"""Process supervisor: restart on failure, caps, never-mode, exit 0."""

import pytest

from repro.core.config import VGConfig
from repro.resilience import RESTART_NEVER, RestartPolicy
from repro.system import System

from tests.conftest import ScriptProgram


@pytest.fixture
def sup_system() -> System:
    """A virtual-ghost system with the resilience layer (and thus the
    supervisor) enabled."""
    return System.create(VGConfig.virtual_ghost(), memory_mb=32,
                         disk_mb=32, resilience=True)


def sleeper(env, program):
    """Block forever on an empty pipe (a long-lived service)."""
    fds = yield from env.sys_pipe()
    buf = env.malloc_init(use_ghost=False).malloc(8)
    yield from env.sys_read(fds[0], buf, 8)
    return 0


def crasher(env, program):
    """Exit non-zero immediately (a service that always fails)."""
    yield from env.sys_getpid()
    return 7


def install(system, body, path="/bin/svc"):
    system.install(path, ScriptProgram(body))
    return path


def test_killed_service_is_restarted_with_a_fresh_pid(sup_system):
    path = install(sup_system, sleeper)
    proc = sup_system.supervisor.supervise(path)
    sup_system.run(max_slices=50_000)
    service = sup_system.supervisor.services[0]
    assert sup_system.supervisor.current_pid(service) == proc.pid

    sup_system.kernel.terminate_process(
        sup_system.kernel.processes[proc.pid], 137)
    assert service.restarts == 1
    new_pid = sup_system.supervisor.current_pid(service)
    assert new_pid is not None and new_pid != proc.pid
    assert new_pid in sup_system.kernel.processes
    assert service.pids == [proc.pid, new_pid]
    assert not service.gave_up


def test_restart_charges_backoff_cycles(sup_system):
    path = install(sup_system, sleeper)
    proc = sup_system.supervisor.supervise(path)
    sup_system.run(max_slices=50_000)
    clock = sup_system.machine.clock
    before = clock.cycles_by_kind.get("supervisor_backoff", 0)
    sup_system.kernel.terminate_process(
        sup_system.kernel.processes[proc.pid], 137)
    policy = sup_system.resilience.config.restart
    per_unit = clock._cost_table["supervisor_backoff"]
    assert clock.cycles_by_kind["supervisor_backoff"] - before == \
        policy.backoff_units(1) * per_unit


def test_restart_cap_then_gave_up(sup_system):
    path = install(sup_system, crasher)
    policy = RestartPolicy(mode="on-failure", max_restarts=2)
    sup_system.supervisor.supervise(path, policy=policy)
    service = sup_system.supervisor.services[0]
    # the crasher exits 7 each time it runs; the supervisor respawns it
    # until the cap, then gives up
    sup_system.run(max_slices=500_000)
    assert service.gave_up
    assert service.restarts == 2
    assert service.last_status == 7
    assert sup_system.supervisor.current_pid(service) is None
    assert sup_system.resilience.supervisor_gave_up == 1
    assert len(service.pids) == 3    # original + 2 restarts


def test_never_mode_does_not_restart(sup_system):
    path = install(sup_system, crasher)
    sup_system.supervisor.supervise(path, policy=RESTART_NEVER)
    service = sup_system.supervisor.services[0]
    sup_system.run(max_slices=100_000)
    assert service.restarts == 0
    assert not service.gave_up
    assert service.last_status == 7
    assert sup_system.supervisor.current_pid(service) is None


def test_clean_exit_is_forgotten(sup_system):
    def clean(env, program):
        yield from env.sys_getpid()
        return 0

    path = install(sup_system, clean)
    sup_system.supervisor.supervise(path)
    service = sup_system.supervisor.services[0]
    sup_system.run(max_slices=100_000)
    assert service.last_status == 0
    assert service.restarts == 0
    assert not service.gave_up
    assert sup_system.supervisor.current_pid(service) is None


def test_initial_launch_retries_transient_spawn_failure():
    from repro.faults import FaultPlan, FaultSpec
    system = System.create(
        VGConfig.virtual_ghost(), memory_mb=32, disk_mb=32,
        resilience=True,
        fault_plan=FaultPlan(b"launch", {
            "kernel.frame_alloc": FaultSpec(rate=1.0, max_faults=1)}))
    path = install(system, sleeper)
    clock = system.machine.clock
    proc = system.supervisor.supervise(path)
    assert proc.pid in system.kernel.processes
    assert clock.cycles_by_kind["supervisor_backoff"] > 0
    notes = [r for r in system.fault_plan.log.records
             if r.site == "supervisor.launch_retry"]
    assert len(notes) == 1


def test_unsupervised_processes_are_ignored(sup_system):
    path = install(sup_system, crasher)
    proc = sup_system.spawn(path)
    status = sup_system.run_until_exit(proc)
    assert status == 7
    assert sup_system.supervisor.services == []
    assert sup_system.resilience.supervisor_restarts == 0
