"""Retry/ARQ/restart policy arithmetic: determinism, clamps, validation."""

import pytest

from repro.resilience import (RESTART_NEVER, RESTART_ON_FAILURE, ArqPolicy,
                              RestartPolicy, RetryPolicy)


# -- RetryPolicy ----------------------------------------------------------------

def test_backoff_ramps_exponentially_and_clamps():
    policy = RetryPolicy(max_attempts=6, base_units=25, multiplier=2,
                         max_backoff_units=100)
    assert [policy.backoff_units(a) for a in range(1, 6)] == \
        [25, 50, 100, 100, 100]


def test_backoff_schedule_matches_backoff_units():
    policy = RetryPolicy()
    assert policy.backoff_schedule() == tuple(
        policy.backoff_units(a) for a in range(1, policy.max_attempts))
    # default: 4 attempts = initial try + 3 retries
    assert len(policy.backoff_schedule()) == 3


def test_backoff_is_deterministic_across_instances():
    a = RetryPolicy(max_attempts=5, base_units=7, multiplier=3,
                    max_backoff_units=1000)
    b = RetryPolicy(max_attempts=5, base_units=7, multiplier=3,
                    max_backoff_units=1000)
    assert a.backoff_schedule() == b.backoff_schedule() == (7, 21, 63, 189)


def test_backoff_attempt_must_be_positive():
    with pytest.raises(ValueError):
        RetryPolicy().backoff_units(0)


def test_max_attempts_one_means_never_retry():
    assert RetryPolicy(max_attempts=1).backoff_schedule() == ()


@pytest.mark.parametrize("kwargs", [
    {"max_attempts": 0},
    {"base_units": 0},
    {"multiplier": 0},
    {"base_units": 50, "max_backoff_units": 10},
    {"budget": -1},
])
def test_retry_policy_validation(kwargs):
    with pytest.raises(ValueError):
        RetryPolicy(**kwargs)


# -- ArqPolicy ------------------------------------------------------------------

def test_arq_timeout_doubles_and_clamps():
    policy = ArqPolicy(max_retransmits=8, base_timeout_units=100,
                       max_timeout_units=1600)
    assert [policy.timeout_units(a) for a in range(1, 8)] == \
        [100, 200, 400, 800, 1600, 1600, 1600]
    with pytest.raises(ValueError):
        policy.timeout_units(0)


@pytest.mark.parametrize("kwargs", [
    {"max_retransmits": 0},
    {"base_timeout_units": 0},
    {"base_timeout_units": 200, "max_timeout_units": 100},
])
def test_arq_policy_validation(kwargs):
    with pytest.raises(ValueError):
        ArqPolicy(**kwargs)


# -- RestartPolicy --------------------------------------------------------------

def test_restart_backoff_ramps_and_clamps():
    policy = RestartPolicy(max_restarts=5, base_units=1000, multiplier=2,
                           max_backoff_units=3000)
    assert [policy.backoff_units(n) for n in range(1, 5)] == \
        [1000, 2000, 3000, 3000]
    with pytest.raises(ValueError):
        policy.backoff_units(0)


def test_restart_mode_validation():
    with pytest.raises(ValueError):
        RestartPolicy(mode="always")
    assert RESTART_NEVER.mode == "never"
    assert RESTART_ON_FAILURE.mode == "on-failure"


def test_policies_are_frozen_values():
    with pytest.raises(Exception):
        RetryPolicy().max_attempts = 9
    assert RetryPolicy() == RetryPolicy()
    assert ArqPolicy() == ArqPolicy()
