"""Reliable transport (ARQ), socket timeouts, and the idle-identity
invariant: with no fault plan the resilience layer must be free."""

import pytest

from repro.core.config import VGConfig
from repro.faults import FaultPlan, FaultSpec
from repro.kernel.syscalls.net import SO_ACCEPTTIMEO, SO_RCVTIMEO
from repro.kernel.syscalls.table import ERRNO
from repro.system import System
from repro.userland.wrappers import GhostWrappers

from tests.conftest import ScriptProgram, run_script, write_and_read_file

PAYLOAD = bytes(range(256)) * 32          # 8 KiB, every byte value


def make_system(specs=None, *, resilience=True, seed=b"transport"):
    plan = FaultPlan(seed, specs) if specs else None
    return System.create(VGConfig.virtual_ghost(), memory_mb=32,
                         disk_mb=32, fault_plan=plan,
                         resilience=resilience)


class Sink:
    """Remote peer that records everything it receives."""

    def __init__(self):
        self.received = bytearray()
        self.closed = False

    def on_connect(self, conn):
        self.conn = conn

    def on_data(self, conn, data):
        self.received += data

    def on_close(self, conn):
        self.closed = True


def serve_payload(env, program):
    env.malloc_init(use_ghost=False)
    wrappers = GhostWrappers(env)
    listen_fd = yield from env.sys_listen(7100)
    program.ready = True
    conn_fd = yield from env.sys_accept(listen_fd)
    yield from wrappers.write_bytes(conn_fd, PAYLOAD)
    yield from env.sys_close(conn_fd)
    return 0


def run_transfer(system):
    """Serve PAYLOAD to a remote Sink over the (possibly lossy) NIC."""
    program = ScriptProgram(serve_payload)
    system.install("/bin/server", program)
    proc = system.spawn("/bin/server")
    system.run(max_slices=20_000)
    assert getattr(program, "ready", False)
    sink = Sink()
    system.kernel.net.remote_connect(7100, sink)
    status = system.run_until_exit(proc)
    assert status == 0
    return sink


# -- ARQ ------------------------------------------------------------------------

def test_arq_delivers_exactly_under_tx_drops():
    system = make_system({"nic.tx": FaultSpec(rate=0.4, kinds=("drop",))})
    sink = run_transfer(system)
    assert bytes(sink.received) == PAYLOAD
    engine = system.resilience
    assert engine.arq_retransmits > 0
    assert system.machine.clock.cycles_by_kind["arq_timeout"] > 0


def test_arq_discards_duplicates():
    system = make_system({"nic.tx": FaultSpec(rate=1.0, kinds=("dup",))})
    sink = run_transfer(system)
    # every frame was duplicated on the wire; the receiver must still
    # see the byte stream exactly once
    assert bytes(sink.received) == PAYLOAD
    assert system.resilience.arq_dup_discarded > 0


def test_arq_survives_rx_ring_drops():
    system = make_system({"nic.rx": FaultSpec(rate=1.0, max_faults=3)})

    def body(env, program):
        env.malloc_init(use_ghost=False)
        wrappers = GhostWrappers(env)
        listen_fd = yield from env.sys_listen(7100)
        program.ready = True
        conn_fd = yield from env.sys_accept(listen_fd)
        program.result = yield from wrappers.read_bytes(conn_fd,
                                                        len(PAYLOAD))
        yield from env.sys_close(conn_fd)
        return 0

    program = ScriptProgram(body)
    system.install("/bin/server", program)
    proc = system.spawn("/bin/server")
    system.run(max_slices=20_000)

    class Talker:
        def on_connect(self, conn):
            conn.peer_send(PAYLOAD)

        def on_data(self, conn, data): pass
        def on_close(self, conn): pass

    system.kernel.net.remote_connect(7100, Talker())
    assert system.run_until_exit(proc) == 0
    assert program.result == PAYLOAD
    assert system.resilience.arq_retransmits > 0


def test_arq_exhaustion_still_delivers():
    system = make_system({"nic.tx": FaultSpec(rate=1.0, kinds=("drop",))})
    sink = run_transfer(system)
    # the wire drops every lossy attempt; after max_retransmits the
    # transport degrades to a guaranteed final transmission rather than
    # losing data
    assert bytes(sink.received) == PAYLOAD
    assert system.resilience.arq_exhausted > 0


def test_without_resilience_nic_faults_are_absorbed_by_the_nic():
    # back-compat: with the layer off the NIC keeps its pre-existing
    # reliable behaviour (counted faults, exactly-once delivery)
    system = make_system({"nic.tx": FaultSpec(rate=0.4)},
                         resilience=False)
    sink = run_transfer(system)
    assert bytes(sink.received) == PAYLOAD
    assert system.resilience.enabled is False


# -- socket timeouts ------------------------------------------------------------

def test_recv_timeout_returns_etimedout():
    system = make_system()

    def body(env, program):
        env.malloc_init(use_ghost=False)
        heap = env.malloc_init(use_ghost=False)
        listen_fd = yield from env.sys_listen(7200)
        program.ready = True
        conn_fd = yield from env.sys_accept(listen_fd)
        yield from env.sys_setsockopt(conn_fd, SO_RCVTIMEO, 50_000)
        buf = heap.malloc(16)
        program.result = yield from env.sys_read(conn_fd, buf, 16)
        yield from env.sys_close(conn_fd)
        return 0

    program = ScriptProgram(body)
    system.install("/bin/server", program)
    proc = system.spawn("/bin/server")
    system.run(max_slices=20_000)

    class Silent:
        def on_connect(self, conn): pass
        def on_data(self, conn, data): pass
        def on_close(self, conn): pass

    system.kernel.net.remote_connect(7200, Silent())
    assert system.run_until_exit(proc) == 0
    assert program.result == -ERRNO["ETIMEDOUT"]
    assert system.resilience.deadline_misses == 1


def test_recv_timeout_does_not_fire_when_data_arrives():
    system = make_system()

    def body(env, program):
        env.malloc_init(use_ghost=False)
        wrappers = GhostWrappers(env)
        listen_fd = yield from env.sys_listen(7201)
        program.ready = True
        conn_fd = yield from env.sys_accept(listen_fd)
        yield from env.sys_setsockopt(conn_fd, SO_RCVTIMEO, 10_000_000)
        program.result = yield from wrappers.read_bytes(conn_fd, 5)
        yield from env.sys_close(conn_fd)
        return 0

    program = ScriptProgram(body)
    system.install("/bin/server", program)
    proc = system.spawn("/bin/server")
    system.run(max_slices=20_000)

    class Prompt:
        def on_connect(self, conn):
            conn.peer_send(b"hello")

        def on_data(self, conn, data): pass
        def on_close(self, conn): pass

    system.kernel.net.remote_connect(7201, Prompt())
    assert system.run_until_exit(proc) == 0
    assert program.result == b"hello"
    assert system.resilience.deadline_misses == 0


def test_accept_timeout_returns_etimedout():
    system = make_system()

    def body(env, program):
        listen_fd = yield from env.sys_listen(7202)
        yield from env.sys_setsockopt(listen_fd, SO_ACCEPTTIMEO, 50_000)
        program.result = yield from env.sys_accept(listen_fd)
        return 0

    _, program = run_script(system, body)
    assert program.result == -ERRNO["ETIMEDOUT"]
    assert system.resilience.deadline_misses == 1


def test_setsockopt_validates_fd_and_option():
    system = make_system()

    def body(env, program):
        listen_fd = yield from env.sys_listen(7203)
        bad_fd = yield from env.sys_setsockopt(99, SO_RCVTIMEO, 1)
        bad_opt = yield from env.sys_setsockopt(listen_fd, 42, 1)
        bad_val = yield from env.sys_setsockopt(listen_fd,
                                                SO_ACCEPTTIMEO, -5)
        cleared = yield from env.sys_setsockopt(listen_fd,
                                                SO_ACCEPTTIMEO, 0)
        program.result = (bad_fd, bad_opt, bad_val, cleared)
        return 0

    _, program = run_script(system, body)
    assert program.result == (-ERRNO["EBADF"], -ERRNO["EINVAL"],
                              -ERRNO["EINVAL"], 0)


# -- idle identity --------------------------------------------------------------

def test_resilience_is_free_when_no_faults_fire():
    results = {}
    for enabled in (False, True):
        system = System.create(VGConfig.virtual_ghost(), memory_mb=32,
                               disk_mb=32, resilience=enabled)
        status, program = run_script(system, write_and_read_file)
        assert status == 0 and program.result == b"hello world"
        results[enabled] = (system.cycles,
                            dict(system.machine.clock.cycles_by_kind))
    assert results[False] == results[True]


def test_idle_transfer_is_bit_identical_with_resilience():
    results = {}
    for enabled in (False, True):
        system = make_system(resilience=enabled)
        sink = run_transfer(system)
        assert bytes(sink.received) == PAYLOAD
        results[enabled] = (system.cycles,
                            dict(system.machine.clock.cycles_by_kind))
    assert results[False] == results[True]
