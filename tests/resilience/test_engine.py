"""ResilienceEngine: absorb/exhaust semantics and cycle conservation."""

import pytest

from repro.errors import DeviceFault
from repro.faults import FaultPlan, FaultSpec
from repro.hardware.clock import CycleClock
from repro.observe.report import MECHANISM_GROUPS
from repro.resilience import (NO_RESILIENCE, ResilienceConfig,
                              ResilienceEngine, RetryPolicy)


def make_engine(**config_kwargs):
    return ResilienceEngine(CycleClock(), ResilienceConfig(**config_kwargs))


class FlakyOp:
    """Operation that raises DeviceFault for the first N calls."""

    def __init__(self, failures: int, result=b"data"):
        self.failures = failures
        self.calls = 0
        self.result = result

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise DeviceFault("disk.read", "io_error")
        return self.result


# -- retry_device ---------------------------------------------------------------

def test_retry_absorbs_transient_device_fault():
    engine = make_engine()
    op = FlakyOp(failures=1)
    first = DeviceFault("disk.read", "io_error")
    assert engine.retry_device("disk.read", op, first) == b"data"
    site = engine.site("disk.read")
    assert (site.retries, site.absorbed, site.exhausted) == (2, 1, 0)


def test_retry_exhaustion_escalates_the_original_fault():
    engine = make_engine()
    op = FlakyOp(failures=99)
    first = DeviceFault("disk.write", "torn_write")
    with pytest.raises(DeviceFault) as exc_info:
        engine.retry_device("disk.write", op, first)
    # the *original* fault object escalates, so errno translation at the
    # caller is based on what actually happened first
    assert exc_info.value is first
    site = engine.site("disk.write")
    policy = engine.config.device_retry
    assert op.calls == policy.max_attempts - 1
    assert (site.absorbed, site.exhausted) == (0, 1)


def test_retry_backoff_cycles_match_the_policy_schedule():
    engine = make_engine()
    clock = engine.clock
    op = FlakyOp(failures=99)
    first = DeviceFault("disk.read", "io_error")
    with pytest.raises(DeviceFault):
        engine.retry_device("disk.read", op, first)
    schedule = engine.config.device_retry.backoff_schedule()
    per_unit = clock._cost_table["retry_backoff"]
    assert clock.cycles_by_kind["retry_backoff"] == \
        sum(schedule) * per_unit
    # conservation: everything charged is attributed
    assert clock.cycles == sum(clock.cycles_by_kind.values())


def test_retry_backoff_lands_in_the_resilience_mechanism_group():
    assert "retry_backoff" in MECHANISM_GROUPS["resilience"]
    assert "arq_timeout" in MECHANISM_GROUPS["resilience"]
    assert "supervisor_backoff" in MECHANISM_GROUPS["resilience"]
    assert "timer_wait" in MECHANISM_GROUPS["resilience"]


def test_site_budget_exhaustion_stops_retries():
    policy = RetryPolicy(max_attempts=4, budget=1)
    engine = make_engine(device_retry=policy)
    first = DeviceFault("disk.read", "io_error")
    op = FlakyOp(failures=99)
    with pytest.raises(DeviceFault):
        engine.retry_device("disk.read", op, first)
    assert op.calls == 1            # only the budgeted retry ran
    # budget is spent for the site's lifetime: next failure never retries
    op2 = FlakyOp(failures=99)
    with pytest.raises(DeviceFault):
        engine.retry_device("disk.read", op2, first)
    assert op2.calls == 0
    assert engine.site("disk.read").exhausted == 2


# -- absorb_transient ----------------------------------------------------------

def one_shot_plan(site: str) -> FaultPlan:
    """A plan whose site fires exactly once, then goes quiet."""
    return FaultPlan(b"engine-test",
                     {site: FaultSpec(rate=1.0, max_faults=1)})


def test_absorb_transient_clears_after_the_injected_burst():
    engine = make_engine()
    plan = one_shot_plan("fs.cache")
    assert plan.decide("fs.cache", "fill") is not None
    assert engine.absorb_transient("fs.cache", plan, "fill") is None
    site = engine.site("fs.cache")
    assert site.absorbed == 1 and site.exhausted == 0


def test_absorb_transient_exhausts_under_sustained_faults():
    engine = make_engine()
    plan = FaultPlan(b"engine-test", {"fs.alloc": FaultSpec(rate=1.0)})
    assert plan.decide("fs.alloc", "inode") is not None
    kind = engine.absorb_transient("fs.alloc", plan, "inode")
    assert kind is not None
    assert engine.site("fs.alloc").exhausted == 1


# -- snapshot / inert engine ----------------------------------------------------

def test_snapshot_is_sorted_and_complete():
    engine = make_engine()
    engine.arq_retransmits = 3
    engine.site("disk.read").retries = 2
    snap = engine.snapshot()
    assert list(snap) == sorted(snap)
    assert snap["arq.retransmits"] == 3
    assert snap["retry.disk.read.retries"] == 2


def test_no_resilience_is_inert():
    assert NO_RESILIENCE.enabled is False
    assert NO_RESILIENCE.snapshot() == {}
    # call sites read .config for defaults without special-casing
    assert NO_RESILIENCE.config.recv_timeout_cycles is None
