"""Control-flow hijacking *inside the kernel*: the side benefit of 4.3.1.

The paper: "a side benefit of our design is that the operating system
kernel gets strong protection against control flow hijacking attacks."
These tests build a vulnerable kernel module (a stack buffer overflow
that clobbers the on-stack return address) and a ROP-style gadget, then
show the classic exploit chain works on the native kernel and dies at
the CFI check under Virtual Ghost.
"""

import pytest

from repro.core.config import VGConfig
from repro.errors import CFIViolation, InterpreterError
from repro.system import System

#: A module with a write-what-where stack bug and a juicy gadget.
VULNERABLE_MODULE = """
module vulnmod

extern @klog/2

global @pwned 8
global @banner 16 = "kernel pwned"

# The "gadget" an attacker wants to reach without a legitimate call.
func @grant_root() {
entry:
  store8 1, @pwned
  %r = call @klog(@banner, 12)
  ret 0
}

# Classic overflow: copies attacker data upward from a stack buffer;
# offset 32 lands exactly on the saved return address.
func @parse_packet(%value, %offset) {
entry:
  %buf = alloca 32
  %slot = add %buf, %offset
  store8 %value, %slot
  ret 0
}

func @handle(%value, %offset) {
entry:
  %r = call @parse_packet(%value, %offset)
  ret %r
}
"""


def _load(config):
    system = System.create(config, memory_mb=32)
    module = system.kernel.loader.load(VULNERABLE_MODULE)
    return system, module


def _pwned(system, module) -> bool:
    return system.kernel.ctx.port.load(module.global_addr("pwned"),
                                       8) == 1


def test_overflow_hijacks_kernel_control_flow_on_native():
    system, module = _load(VGConfig.native())
    gadget = module.image.functions["grant_root"].base
    # smash parse_packet's return address with the gadget entry
    module.call("handle", [gadget, 32])
    assert _pwned(system, module)
    assert system.console.contains("kernel pwned")


def test_single_label_cfi_permits_return_to_function_entry():
    """The paper's prototype uses ONE label for call sites and function
    entries (a deliberately conservative call graph), so a smashed
    return aimed at a function *entry* passes the check -- the known
    residual of coarse-grained CFI, which the paper accepts because the
    sandboxing (not CFI precision) is what protects ghost memory."""
    system, module = _load(VGConfig.virtual_ghost())
    gadget = module.image.functions["grant_root"].base
    module.call("handle", [gadget, 32])
    assert _pwned(system, module)          # entry reuse is CFI-legal
    # ...but the gadget still cannot touch ghost memory: its stores are
    # sandboxed like all kernel code (see test_rootkit.py)


def test_cfi_stops_rop_into_function_middle():
    """Jumping past the entry label (skipping a check, ROP-style) is
    exactly what the single-label scheme rejects."""
    system, module = _load(VGConfig.virtual_ghost())
    gadget_mid = module.image.functions["grant_root"].base + 2
    with pytest.raises(CFIViolation):
        module.call("handle", [gadget_mid, 32])
    assert not _pwned(system, module)


def test_native_jump_into_middle_crashes_or_hijacks():
    """Without CFI the return lands wherever the attacker aimed; a
    non-instruction target is a plain kernel crash, not a defense."""
    system, module = _load(VGConfig.native())
    with pytest.raises(InterpreterError):
        module.call("handle", [0xDEAD, 32])


def test_benign_offsets_do_not_trip_cfi():
    """In-bounds writes never touch the return slot: the instrumented
    module behaves identically to the native one."""
    for config in (VGConfig.native(), VGConfig.virtual_ghost()):
        system, module = _load(config)
        assert module.call("handle", [0x41414141, 0]) == 0
        assert module.call("handle", [0x41414141, 24]) == 0
        assert not _pwned(system, module)


def test_cfi_violation_counted():
    system, module = _load(VGConfig.virtual_ghost())
    gadget_mid = module.image.functions["grant_root"].base + 2
    with pytest.raises(CFIViolation):
        module.call("handle", [gadget_mid, 32])
    assert module.interpreter.cfi_violations == 1
