"""Section 7: the rootkit's two attacks against ssh-agent.

Expected outcomes exactly as in the paper: on the native kernel both
attacks steal the secret; under Virtual Ghost both fail and ssh-agent
continues execution unaffected.
"""

import pytest

from repro.attacks.rootkit import STEAL_BYTES, RootkitAttack
from repro.core.config import VGConfig
from repro.kernel.proc import Program
from repro.system import System
from repro.userland.apps.ssh_agent import SECRET_STRING
from repro.userland.libc import O_RDONLY

SECRET = SECRET_STRING.ljust(STEAL_BYTES, b".")


class Victim(Program):
    """ssh-agent stand-in: secret in the heap, reads from a descriptor.

    (The full agent works too -- see test_full_agent_under_attack -- but
    this minimal victim keeps per-case setup fast.)
    """

    program_id = "victim-agent"

    def __init__(self):
        self.secret_addr = 0
        self.reads_done = 0
        self.secret_intact_after = None

    def main(self, env):
        heap = env.malloc_init(use_ghost=env.ghost_available)
        self.secret_addr = heap.store(SECRET)
        yield from env.sys_sched_yield()        # let the attacker arm
        buf = env.kernel.vmm.mmap(env.proc.aspace, 0, 4096, 3, 1)
        fd = yield from env.sys_open("/data.txt", O_RDONLY)
        for _ in range(6):
            yield from env.sys_read(fd, buf, 64)
            yield from env.sys_lseek(fd, 0, 0)
            self.reads_done += 1
        self.secret_intact_after = (
            env.mem_read(self.secret_addr, len(SECRET)) == SECRET)
        yield from env.sys_close(fd)
        return 0


def _run_attack(config, mode):
    system = System.create(config, memory_mb=48)
    system.write_file("/data.txt", b"innocuous file contents " * 10)
    victim_program = Victim()
    system.install("/bin/victim", victim_program)
    attack = RootkitAttack(system.kernel)
    proc = system.spawn("/bin/victim")
    system.run(until=lambda: victim_program.secret_addr != 0,
               max_slices=100_000)
    attack.arm(proc, victim_program.secret_addr, mode)
    status = system.run_until_exit(proc, max_slices=1_000_000)
    result = attack.result(proc, SECRET, mode)
    return system, victim_program, result, status


# -- attack 1: direct read -------------------------------------------------------

def test_direct_read_succeeds_on_native():
    system, victim, result, _ = _run_attack(VGConfig.native(),
                                            RootkitAttack.MODE_DIRECT)
    assert result.console_leak          # secret printed to the log
    assert result.succeeded


def test_direct_read_fails_under_virtual_ghost():
    system, victim, result, status = _run_attack(
        VGConfig.virtual_ghost(), RootkitAttack.MODE_DIRECT)
    assert not result.console_leak
    assert not result.succeeded
    # the module read masked garbage, but the victim is unharmed:
    assert status == 0
    assert victim.reads_done == 6
    assert victim.secret_intact_after


def test_direct_read_vg_module_loads_were_masked():
    system, *_ = _run_attack(VGConfig.virtual_ghost(),
                             RootkitAttack.MODE_DIRECT)
    assert system.kernel.ctx.stray_reads > 0     # loads hit the dead zone


# -- attack 2: signal-handler code injection -----------------------------------------

def test_injection_succeeds_on_native():
    system, victim, result, _ = _run_attack(VGConfig.native(),
                                            RootkitAttack.MODE_INJECT)
    assert result.exploit_ran
    assert result.file_leak              # secret written to /stolen.txt
    assert result.succeeded
    # note: the victim itself keeps running (the exploit rode a signal)
    assert result.victim_alive or victim.reads_done == 6


def test_injection_fails_under_virtual_ghost():
    system, victim, result, status = _run_attack(
        VGConfig.virtual_ghost(), RootkitAttack.MODE_INJECT)
    assert not result.exploit_ran
    assert not result.file_leak
    assert not result.succeeded
    # sva.ipush.function refused the unregistered target
    assert system.kernel.signals.refused_by_vg >= 1
    assert system.kernel.vm.stats["ipush_refused"] >= 1
    # and the victim continued unaffected (the paper's key claim)
    assert status == 0
    assert victim.reads_done == 6
    assert victim.secret_intact_after


def test_attack_module_compiles_through_vg_pipeline():
    system = System.create(VGConfig.virtual_ghost(), memory_mb=48)
    attack = RootkitAttack(system.kernel)
    image = attack.module.image
    assert image.signature is not None
    opcodes = [i.opcode
               for i in image.functions["steal_direct"].insns]
    assert "vgmask" in opcodes and "cfi_ret" in opcodes


def test_disarmed_module_passes_reads_through(any_system):
    any_system.write_file("/data.txt", b"contents")
    attack = RootkitAttack(any_system.kernel)
    attack.disarm()

    from tests.conftest import run_script, write_and_read_file
    status, program = run_script(any_system, write_and_read_file)
    assert status == 0 and program.result == b"hello world"


# -- the full ssh-agent as the victim (paper's actual target) --------------------------

def test_full_agent_under_direct_attack_vg():
    from repro.userland.apps.ssh_agent import SshAgent
    from repro.userland.loader import derive_app_key

    system = System.create(VGConfig.virtual_ghost(), memory_mb=48)
    key = derive_app_key("agent-attack")
    agent = SshAgent()
    system.install("/bin/ssh-agent", agent, app_key=key)
    attack = RootkitAttack(system.kernel)
    proc = system.spawn("/bin/ssh-agent")
    system.run(until=lambda: agent.secret_addr != 0, max_slices=100_000)
    attack.arm(proc, agent.secret_addr, RootkitAttack.MODE_DIRECT)

    # Drive the agent: a PING makes it read from the connection (the
    # hooked read syscall fires the attack) and touch its secret.
    from repro.userland.wrappers import GhostWrappers
    from repro.userland.apps.ssh_agent import AGENT_PORT
    from tests.conftest import ScriptProgram

    def driver(env, program):
        env.malloc_init(use_ghost=False)
        wrappers = GhostWrappers(env)
        fd = yield from env.sys_connect("localhost", AGENT_PORT)
        yield from wrappers.write_bytes(fd, b"PING")
        program.result = yield from wrappers.read_bytes(fd, 4)
        yield from env.sys_close(fd)
        fd = yield from env.sys_connect("localhost", AGENT_PORT)
        yield from wrappers.write_bytes(fd, b"STOP")
        yield from env.sys_close(fd)
        return 0

    driver_program = ScriptProgram(driver)
    system.install("/bin/driver", driver_program, app_key=key)
    driver_proc = system.spawn("/bin/driver")
    system.run_until_exit(driver_proc, max_slices=1_000_000)
    system.run_until_exit(proc, max_slices=1_000_000)

    needle = SECRET_STRING[:16].decode("latin-1")
    assert not system.console.contains(needle)
    assert driver_program.result == b"PONG"   # agent fully functional
