"""The remaining section-2.2 attack vectors: MMU, DMA, interrupted state,
Iago, and code modification."""

import pytest

from repro.attacks.code_patch import (exec_tampered_binary,
                                      patch_translated_module)
from repro.attacks.dma_attack import (dma_out_ghost_frame,
                                      reconfigure_iommu_then_dma)
from repro.attacks.iago import run_mmap_iago, run_random_iago
from repro.attacks.icontext_attack import (overwrite_saved_pc,
                                           read_saved_register)
from repro.attacks.mmu_attack import (make_code_page_writable,
                                      map_ghost_frame_into_kernel,
                                      remap_ghost_vaddr)
from repro.core.config import VGConfig
from repro.core.layout import GHOST_START
from repro.kernel.syscalls.table import SYS
from repro.system import System
from repro.userland.libc import O_RDONLY

from tests.conftest import ScriptProgram

SECRET = b"0123456789abcdef" * 4


def _victim_with_ghost_secret(config):
    system = System.create(config, memory_mb=48)

    def body(env, program):
        heap = env.malloc_init(use_ghost=env.ghost_available)
        program.secret_addr = heap.store(SECRET)
        yield from env.sys_sched_yield()
        program.still_intact = (env.mem_read(program.secret_addr,
                                             len(SECRET)) == SECRET)
        return 0

    program = ScriptProgram(body)
    system.install("/bin/victim", program)
    proc = system.spawn("/bin/victim")
    system.run(until=lambda: hasattr(program, "secret_addr"),
               max_slices=100_000)
    return system, proc, program


# -- MMU attacks ---------------------------------------------------------------------

def test_mmu_ghost_frame_mapping_denied_under_vg():
    system, proc, program = _victim_with_ghost_secret(
        VGConfig.virtual_ghost())
    result = map_ghost_frame_into_kernel(system.kernel, proc,
                                         program.secret_addr)
    assert result.denied
    assert result.leaked == b""


def test_mmu_ghost_frame_mapping_succeeds_on_native():
    system, proc, program = _victim_with_ghost_secret(VGConfig.native())
    result = map_ghost_frame_into_kernel(system.kernel, proc,
                                         program.secret_addr)
    assert not result.denied
    assert result.leaked.startswith(SECRET[:64])


def test_mmu_ghost_vaddr_remap_denied_under_vg():
    system, proc, program = _victim_with_ghost_secret(
        VGConfig.virtual_ghost())
    attacker_frame = system.kernel.vmm.frames.alloc()
    result = remap_ghost_vaddr(system.kernel, proc, attacker_frame)
    assert result.denied


def test_mmu_code_page_write_enable_denied_under_vg():
    system = System.create(VGConfig.virtual_ghost(), memory_mb=32)
    kernel = system.kernel
    # create a code page: map a frame, classify, then attack it
    from repro.core.layout import KERNEL_HEAP_START
    frame = kernel.vmm.frames.alloc()
    vaddr = KERNEL_HEAP_START + 0x40_0000
    kernel.vm.mmu_map_page(kernel.kernel_root, vaddr, frame,
                           writable=False, user=False, executable=True)
    kernel.vm.declare_code_frame(frame)
    result = make_code_page_writable(kernel, frame, vaddr)
    assert result.denied


# -- DMA attacks ------------------------------------------------------------------------

def test_dma_exfiltration_blocked_under_vg():
    system, proc, program = _victim_with_ghost_secret(
        VGConfig.virtual_ghost())
    frame = system.kernel.vm.ghosts.frame_for(proc.pid,
                                              program.secret_addr)
    result = dma_out_ghost_frame(system.kernel, frame)
    assert result.dma_blocked
    assert result.leaked == b""


def test_dma_exfiltration_succeeds_on_native():
    system, proc, program = _victim_with_ghost_secret(VGConfig.native())
    from repro.core.layout import page_of
    frame = proc.aspace.resident[page_of(program.secret_addr)]
    result = dma_out_ghost_frame(system.kernel, frame)
    assert not result.dma_blocked
    assert SECRET[:16] in result.leaked


def test_iommu_reconfiguration_refused_under_vg():
    system, proc, program = _victim_with_ghost_secret(
        VGConfig.virtual_ghost())
    frame = system.kernel.vm.ghosts.frame_for(proc.pid,
                                              program.secret_addr)
    result = reconfigure_iommu_then_dma(system.kernel, frame)
    assert result.reconfig_blocked
    assert result.dma_blocked


# -- interrupted program state -------------------------------------------------------------

def _trap_with_register_secret(config):
    """Drive a process into a syscall with a secret in rbx; the attack
    functions run while the trap is open (as a hooked handler would)."""
    system = System.create(config, memory_mb=32)
    observed = {}

    def body(env, program):
        env.set_register("rbx", 0x5EC4E7C0DE)
        yield from env.sys_getpid()
        program.resumed = True
        return 0

    program = ScriptProgram(body)
    system.install("/bin/p", program)
    proc = system.spawn("/bin/p")

    # hook getpid to run the attack mid-trap
    kernel = system.kernel
    original = kernel.execute_syscall

    def spying_execute(thread, request):
        if request.number == SYS["getpid"] and "leak" not in observed:
            kernel.current_thread = thread
            kernel._load_syscall_regs(thread, request)
            kernel.vm.trap_enter(thread.tid, __import__(
                "repro.core.icontext",
                fromlist=["TrapKind"]).TrapKind.SYSCALL, thread.uregs)
            observed["leak"] = read_saved_register(kernel, thread, "rbx")
            kernel.vm.trap_exit(thread.tid)
        return original(thread, request)

    kernel.execute_syscall = spying_execute
    system.run_until_exit(proc, max_slices=100_000)
    return observed["leak"]


def test_saved_registers_readable_on_native():
    assert _trap_with_register_secret(VGConfig.native()) == 0x5EC4E7C0DE


def test_saved_registers_hidden_under_vg():
    """With the IC in SVA memory, the kernel-stack location holds
    nothing: the attacker reads zeros."""
    assert _trap_with_register_secret(VGConfig.virtual_ghost()) == 0


def _pc_rewrite(config):
    system = System.create(config, memory_mb=32)
    ran = {"injected": False}

    def injected(env, *args):
        ran["injected"] = True
        return 0
        yield

    def body(env, program):
        addr = env.proc.code_cursor          # predictable next address
        env.proc.inject_code(addr, injected)
        program.target = addr
        yield from env.sys_sched_yield()
        yield from env.sys_getpid()
        program.done = True
        return 0

    program = ScriptProgram(body)
    system.install("/bin/p", program)
    proc = system.spawn("/bin/p")
    system.run(until=lambda: hasattr(program, "target"),
               max_slices=100_000)

    kernel = system.kernel
    original = kernel.execute_syscall

    def tampering_execute(thread, request):
        if request.number == SYS["getpid"]:
            kernel.current_thread = thread
            kernel._load_syscall_regs(thread, request)
            from repro.core.icontext import TrapKind
            kernel.vm.trap_enter(thread.tid, TrapKind.SYSCALL,
                                 thread.uregs)
            overwrite_saved_pc(kernel, thread, program.target)
            result = 0
            kernel.vm.icontext_set_retval(thread.tid, result)
            ic = kernel.vm.trap_exit(thread.tid)
            return kernel._resume_user(thread, ic, result)
        return original(thread, request)

    kernel.execute_syscall = tampering_execute
    system.run_until_exit(proc, max_slices=100_000)
    return ran["injected"]


def test_pc_rewrite_hijacks_on_native():
    assert _pc_rewrite(VGConfig.native()) is True


def test_pc_rewrite_ineffective_under_vg():
    """The kernel-stack IC is never reloaded under Virtual Ghost; the
    rewrite changes nothing the hardware will use."""
    assert _pc_rewrite(VGConfig.virtual_ghost()) is False


# -- Iago attacks ---------------------------------------------------------------------------

def test_mmap_iago_defeated_by_instrumented_app():
    system = System.create(VGConfig.virtual_ghost(), memory_mb=32)
    result = run_mmap_iago(system.kernel, instrument=True)
    assert result.ghost_write_prevented
    assert result.used_pointer != result.returned_pointer


def test_mmap_iago_succeeds_against_uninstrumented_app():
    system = System.create(VGConfig.native(), memory_mb=32)
    result = run_mmap_iago(system.kernel, instrument=False)
    assert not result.ghost_write_prevented
    assert result.used_pointer == result.returned_pointer


def test_random_iago_defeated_by_sva_random():
    system = System.create(VGConfig.virtual_ghost(), memory_mb=32)
    result = run_random_iago(system.kernel)
    assert result.os_random_constant          # the OS rigged /dev/random
    assert result.sva_random_unaffected       # the trusted RNG is fine


# -- code modification -------------------------------------------------------------------------

def test_patched_translation_rejected_under_vg():
    system = System.create(VGConfig.virtual_ghost(), memory_mb=32)
    result = patch_translated_module(system.kernel)
    assert result.tampered_translation_rejected


def test_patched_translation_runs_on_native():
    system = System.create(VGConfig.native(), memory_mb=32)
    result = patch_translated_module(system.kernel)
    assert not result.tampered_translation_rejected
    assert result.observed_return == 666       # the patch took effect


def test_tampered_exec_refused_under_vg():
    from repro.userland.loader import install_tampered_program
    system = System.create(VGConfig.virtual_ghost(), memory_mb=32)
    install_tampered_program(system.kernel, "/bin/evil",
                             ScriptProgram(lambda env, p: iter(())))
    result = exec_tampered_binary(system.kernel, "/bin/evil")
    assert result.exec_refused
