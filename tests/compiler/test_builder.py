"""IRBuilder: programmatic module construction."""

import pytest

from repro.compiler.builder import IRBuilder
from repro.compiler.codegen import CodeGenerator
from repro.compiler.interp import Interpreter
from repro.compiler.ir import Module
from repro.compiler.verifier import verify_module
from repro.core.layout import KERNEL_CODE_START
from repro.errors import CompilerError
from repro.hardware.clock import CycleClock

from tests.compiler.test_interp import DictMemory


def _run(module, function, args, externs=None):
    verify_module(module)
    image = CodeGenerator(KERNEL_CODE_START + 0x900000,
                          KERNEL_CODE_START + 0xA00000).generate(module)
    interp = Interpreter(image, DictMemory(), CycleClock(),
                         externs=externs or {},
                         stack_top=KERNEL_CODE_START + 0xB00000)
    return interp.run(function, args)


def test_build_and_run_arithmetic():
    module = Module(name="built")
    builder = IRBuilder(module)
    builder.new_function("compute", ["a", "b"])
    builder.new_block("entry")
    total = builder.add("a", "b")
    doubled = builder.mul(total, 2)
    builder.ret(doubled)
    assert _run(module, "compute", [3, 4]) == 14


def test_build_control_flow():
    module = Module(name="built")
    builder = IRBuilder(module)
    builder.new_function("max", ["a", "b"])
    builder.new_block("entry")
    cond = builder.icmp("ugt", "a", "b")
    builder.condbr(cond, "take_a", "take_b")
    builder.new_block("take_a")
    builder.ret("a")
    builder.new_block("take_b")
    builder.ret("b")
    assert _run(module, "max", [9, 5]) == 9
    assert _run(module, "max", [2, 7]) == 7


def test_build_memory_and_globals():
    module = Module(name="built")
    builder = IRBuilder(module)
    slot = builder.global_var("slot", 8)
    builder.new_function("bump", [])
    builder.new_block("entry")
    value = builder.load(slot)
    new_value = builder.add(value, 1)
    builder.store(new_value, slot)
    builder.ret(new_value)
    assert _run(module, "bump", []) == 1


def test_build_calls_and_select():
    module = Module(name="built")
    builder = IRBuilder(module)
    builder.new_function("helper", ["x"])
    builder.new_block("entry")
    builder.ret(builder.xor("x", 0xFF))
    builder.new_function("main", [])
    builder.new_block("entry")
    result = builder.call("helper", [0x0F])
    picked = builder.select(1, result, 0)
    builder.ret(picked)
    assert _run(module, "main", []) == 0xF0


def test_build_alloca_and_memset():
    module = Module(name="built")
    builder = IRBuilder(module)
    builder.new_function("f", [])
    builder.new_block("entry")
    buf = builder.alloca(32)
    builder.memset(buf, 0xAA, 8)
    builder.ret(builder.load(buf))
    assert _run(module, "f", []) == 0xAAAAAAAAAAAAAAAA


def test_emit_after_terminator_rejected():
    module = Module(name="built")
    builder = IRBuilder(module)
    builder.new_function("f", [])
    builder.new_block("entry")
    builder.ret(0)
    with pytest.raises(CompilerError, match="terminated"):
        builder.ret(1)


def test_duplicate_block_label_rejected():
    module = Module(name="built")
    builder = IRBuilder(module)
    builder.new_function("f", [])
    builder.new_block("entry")
    with pytest.raises(CompilerError, match="duplicate"):
        builder.new_block("entry")


def test_fresh_names_unique():
    module = Module(name="built")
    builder = IRBuilder(module)
    names = {builder.fresh() for _ in range(100)}
    assert len(names) == 100


def test_emit_without_block_rejected():
    module = Module(name="built")
    builder = IRBuilder(module)
    builder.new_function("f", [])
    with pytest.raises(CompilerError, match="no current block"):
        builder.ret(0)


def test_set_block_switches_insertion_point():
    module = Module(name="built")
    builder = IRBuilder(module)
    builder.new_function("f", [])
    builder.new_block("entry")
    builder.br("later")
    builder.new_block("later")
    builder.ret(7)
    builder.set_block("entry")   # entry is terminated; appending fails
    with pytest.raises(CompilerError):
        builder.ret(0)
    assert _run(module, "f", []) == 7
