"""Fast tier vs reference tier: every simulated observable must match.

The predecoded fast tier exists purely for host-side speed; the two
tiers must be indistinguishable from inside the simulation. For every
program below -- including error paths, security paths, and programs
that observe the clock mid-run through an extern -- both tiers must
produce identical:

* return values (or exception type and message),
* ``clock.cycles``, ``counters``, ``cycles_by_kind``,
* ``steps_executed`` and ``cfi_violations``,
* final memory contents.
"""

import pytest

from repro.compiler.codegen import CodeGenerator
from repro.compiler.interp import ExecutionLimits, Interpreter
from repro.compiler.parser import parse_module
from repro.compiler.verifier import verify_module
from repro.core.config import VGConfig
from repro.core.layout import KERNEL_CODE_START
from repro.errors import CFIViolation, InterpreterError
from repro.hardware.clock import CycleClock
from repro.system import System

CODE_BASE = KERNEL_CODE_START + 0x100000
DATA_BASE = KERNEL_CODE_START + 0x200000
STACK_TOP = KERNEL_CODE_START + 0x300000


class DictMemory:
    """Byte-addressable memory whose final state can be compared."""

    def __init__(self):
        self.bytes: dict[int, int] = {}

    def load(self, addr, width):
        return int.from_bytes(
            bytes(self.bytes.get(addr + i, 0) for i in range(width)),
            "little")

    def store(self, addr, width, value):
        for i, b in enumerate((value & ((1 << (8 * width)) - 1))
                              .to_bytes(width, "little")):
            self.bytes[addr + i] = b

    def copy(self, dst, src, length):
        data = [self.bytes.get(src + i, 0) for i in range(length)]
        for i, b in enumerate(data):
            self.bytes[dst + i] = b

    def fill(self, dst, byte, length):
        for i in range(length):
            self.bytes[dst + i] = byte & 0xFF


def _observe(source, fn, args, *, reference, externs=None, limits=None):
    """Run one tier on completely fresh state; capture every observable."""
    module = parse_module(source)
    verify_module(module)
    image = CodeGenerator(CODE_BASE, DATA_BASE).generate(module)
    memory = DictMemory()
    clock = CycleClock()
    extern_log: list = []
    built_externs = {name: factory(clock, extern_log)
                     for name, factory in (externs or {}).items()}
    interp = Interpreter(image, memory, clock, externs=built_externs,
                         stack_top=STACK_TOP, limits=limits,
                         reference=reference)
    try:
        outcome = ("value", interp.run(fn, list(args)))
    except (InterpreterError, CFIViolation) as exc:
        outcome = ("error", type(exc).__name__, str(exc))
    return {
        "outcome": outcome,
        "cycles": clock.cycles,
        "counters": dict(clock.counters),
        "cycles_by_kind": dict(clock.cycles_by_kind),
        "steps_executed": interp.steps_executed,
        "cfi_violations": interp.cfi_violations,
        "memory": dict(memory.bytes),
        "extern_log": extern_log,
    }


def assert_tiers_agree(source, fn, args=(), *, externs=None, limits=None):
    fast = _observe(source, fn, args, reference=False,
                    externs=externs, limits=limits)
    reference = _observe(source, fn, args, reference=True,
                         externs=externs, limits=limits)
    assert fast == reference
    return fast


# -- straight-line and arithmetic -------------------------------------------------

def test_alu_mix():
    observed = assert_tiers_agree("""
module t
func @f(%x) {
entry:
  %a = add %x, 41
  %b = mul %a, 3
  %c = xor %b, 0x5555
  %d = lshr %c, 2
  %e = shl %d, 1
  %g = sub %e, %x
  %h = and %g, 0xffff
  %i = or %h, 1
  %j = not %i
  %k = ashr %j, 60
  %m = icmp slt %k, 0
  %n = select %m, %i, %j
  ret %n
}
""", "f", [7])
    assert observed["outcome"][0] == "value"
    assert observed["counters"]["instr"] == 12


def test_signed_ops_and_division():
    assert_tiers_agree("""
module t
func @f(%x, %y) {
entry:
  %q = sdiv %x, %y
  %r = urem %x, 3
  %u = udiv %x, %y
  %s = icmp sge %q, %r
  %t = add %s, %u
  ret %t
}
""", "f", [(-91) % 2 ** 64, 7])


# -- control flow (runs, fused condbr, calls) -----------------------------------

def test_loop_and_calls():
    observed = assert_tiers_agree("""
module t
global @acc 8
func @step(%v) {
entry:
  %old = load8 @acc
  %new = add %old, %v
  store8 %new, @acc
  ret %new
}
func @f(%n) {
entry:
  %i = mov 0
  br loop
loop:
  %c = icmp ult %i, %n
  condbr %c, body, done
body:
  %r = call @step(%i)
  %i = add %i, 1
  br loop
done:
  %total = load8 @acc
  ret %total
}
""", "f", [25])
    assert observed["outcome"] == ("value", sum(range(25)))


def test_recursion():
    assert_tiers_agree("""
module t
func @fib(%n) {
entry:
  %base = icmp ult %n, 2
  condbr %base, leaf, rec
leaf:
  ret %n
rec:
  %n1 = sub %n, 1
  %a = call @fib(%n1)
  %n2 = sub %n, 2
  %b = call @fib(%n2)
  %s = add %a, %b
  ret %s
}
""", "fib", [11])


def test_memcpy_memset_alloca():
    observed = assert_tiers_agree("""
module t
global @src 32 = "abcdefgh01234567abcdefgh01234567"
global @dst 32
func @f() {
entry:
  %buf = alloca 64
  memset %buf, 0xAB, 48
  memcpy @dst, @src, 32
  %v = load8 @dst
  store4 %v, %buf
  %w = load2 %buf
  store1 %w, @dst
  %out = load8 @dst
  ret %out
}
""", "f", [])
    assert observed["memory"]        # both tiers wrote the same bytes


# -- error paths -----------------------------------------------------------------

def test_division_by_zero_mid_run():
    observed = assert_tiers_agree("""
module t
func @f(%x) {
entry:
  %a = add %x, 1
  %b = mul %a, 2
  %q = udiv %b, 0
  %c = add %q, 1
  ret %c
}
""", "f", [5])
    assert observed["outcome"][0] == "error"
    # the prefix plus the failing instruction's own charge settled
    # (charge precedes evaluation, in both tiers)
    assert observed["counters"]["instr"] == 3


def test_step_limit_reports_function_and_steps():
    observed = assert_tiers_agree("""
module t
func @f() {
entry:
  %i = mov 0
  br loop
loop:
  %i = add %i, 1
  br loop
}
""", "f", [], limits=ExecutionLimits(max_steps=1000))
    kind, name, message = observed["outcome"]
    assert kind == "error"
    assert "1001 steps executed" in message
    assert "in @f" in message
    assert "max_steps=1000" in message
    assert observed["steps_executed"] == 1001


def test_step_limit_inside_straight_line_run():
    # The budget expires in the middle of a predecoded run; the partial
    # run's charges and step count must match per-step execution.
    source = """
module t
func @f(%x) {
entry:
  %a = add %x, 1
  %b = add %a, 1
  %c = add %b, 1
  %d = add %c, 1
  %e = add %d, 1
  ret %e
}
"""
    for max_steps in (1, 2, 3, 4, 5, 6, 7):
        observed = assert_tiers_agree(
            source, "f", [1],
            limits=ExecutionLimits(max_steps=max_steps))
        if max_steps >= 6:
            assert observed["outcome"] == ("value", 6)
        else:
            assert observed["outcome"][0] == "error"


def test_call_depth_limit():
    assert_tiers_agree("""
module t
func @f(%n) {
entry:
  %m = add %n, 1
  %r = call @f(%m)
  ret %r
}
""", "f", [0], limits=ExecutionLimits(max_call_depth=17))


def test_undefined_register_message():
    observed = assert_tiers_agree("""
module t
func @g(%flag) {
entry:
  condbr %flag, set, use
set:
  %v = mov 42
  br use
use:
  %r = add %v, 1
  ret %r
}
""", "g", [0])
    kind, name, message = observed["outcome"]
    assert kind == "error"
    assert "%v" in message and "@g" in message


def test_unknown_extern():
    assert_tiers_agree("""
module t
extern @mystery/1
func @f(%x) {
entry:
  %r = call @mystery(%x)
  ret %r
}
""", "f", [9])


# -- extern boundary: the only mid-run clock observation point -------------------

def test_extern_observes_flushed_clock():
    """Externs run host code that may read the clock; batching must be
    settled before every extern call so both tiers expose identical
    intermediate cycles, not just identical totals."""

    def spy_factory(clock, log):
        def spy(args):
            log.append((clock.cycles, dict(clock.counters), list(args)))
            return args[0] * 2
        return spy

    observed = assert_tiers_agree("""
module t
extern @spy/1
func @f(%n) {
entry:
  %i = mov 0
  %acc = mov 0
  br loop
loop:
  %c = icmp ult %i, %n
  condbr %c, body, done
body:
  %r = call @spy(%i)
  %acc = add %acc, %r
  %i = add %i, 1
  br loop
done:
  ret %acc
}
""", "f", [6], externs={"spy": spy_factory})
    assert len(observed["extern_log"]) == 6
    # the log entries are (cycles, counters, args) snapshots: strictly
    # increasing cycles proves the flush happened before each call
    cycle_marks = [entry[0] for entry in observed["extern_log"]]
    assert cycle_marks == sorted(cycle_marks)


# -- instrumented modules under a full system ------------------------------------

VULNERABLE_MODULE = """
module vulnmod

extern @klog/2

global @pwned 8
global @banner 16 = "kernel pwned"

func @grant_root() {
entry:
  store8 1, @pwned
  %r = call @klog(@banner, 12)
  ret 0
}

func @parse_packet(%value, %offset) {
entry:
  %buf = alloca 32
  %slot = add %buf, %offset
  store8 %value, %slot
  ret 0
}

func @handle(%value, %offset) {
entry:
  %r = call @parse_packet(%value, %offset)
  ret %r
}
"""


def _system_observe(reference, config, call_args):
    system = System.create(config, memory_mb=32)
    module = system.kernel.loader.load(VULNERABLE_MODULE)
    module.interpreter.reference = reference
    clock = system.machine.clock
    start = clock.cycles
    try:
        outcome = ("value", module.call("handle", list(call_args)))
    except (InterpreterError, CFIViolation) as exc:
        outcome = ("error", type(exc).__name__, str(exc))
    return {
        "outcome": outcome,
        "cycles": clock.cycles - start,
        "counters": dict(clock.counters),
        "cycles_by_kind": dict(clock.cycles_by_kind),
        "steps_executed": module.interpreter.steps_executed,
        "cfi_violations": module.interpreter.cfi_violations,
    }


@pytest.mark.parametrize("config_name", ["native", "virtual_ghost"])
def test_instrumented_module_benign(config_name):
    config = getattr(VGConfig, config_name)()
    fast = _system_observe(False, config, [0x41414141, 0])
    reference = _system_observe(True, config, [0x41414141, 0])
    assert fast == reference
    assert fast["outcome"] == ("value", 0)


def test_cfi_violation_path():
    """ROP into a function middle: the CFI check fires identically --
    same exception, same charges up to the violation."""
    config = VGConfig.virtual_ghost()
    results = []
    for reference in (False, True):
        system = System.create(config, memory_mb=32)
        module = system.kernel.loader.load(VULNERABLE_MODULE)
        module.interpreter.reference = reference
        gadget_mid = module.image.functions["grant_root"].base + 2
        clock = system.machine.clock
        start = clock.cycles
        with pytest.raises(CFIViolation) as excinfo:
            module.call("handle", [gadget_mid, 32])
        results.append({
            "message": str(excinfo.value),
            "cycles": clock.cycles - start,
            "counters": dict(clock.counters),
            "violations": module.interpreter.cfi_violations,
        })
    assert results[0] == results[1]
    assert results[0]["violations"] == 1


def test_return_hijack_to_function_entry():
    """The single-label scheme permits returns to function entries; the
    hijacked continuation (different function, different frame layout)
    must behave identically in both tiers."""
    config = VGConfig.virtual_ghost()
    results = []
    for reference in (False, True):
        system = System.create(config, memory_mb=32)
        module = system.kernel.loader.load(VULNERABLE_MODULE)
        module.interpreter.reference = reference
        gadget = module.image.functions["grant_root"].base
        clock = system.machine.clock
        start = clock.cycles
        value = module.call("handle", [gadget, 32])
        results.append({
            "value": value,
            "cycles": clock.cycles - start,
            "counters": dict(clock.counters),
            "pwned": system.kernel.ctx.port.load(
                module.global_addr("pwned"), 8),
        })
    assert results[0] == results[1]
    assert results[0]["pwned"] == 1


def test_rootkit_direct_read_attack_equivalent():
    """The full rootkit module (hooked syscall path, multi-function
    attack flow, real kernel externs) runs identically in both tiers --
    and under Virtual Ghost both tiers steal only masked zeros."""
    import os

    from tests.security.test_rootkit import _run_attack

    results = []
    for reference in (False, True):
        os.environ["REPRO_INTERP_TIER"] = (
            "reference" if reference else "")
        try:
            system, victim, result, status = _run_attack(
                VGConfig.virtual_ghost(), mode=1)
        finally:
            os.environ.pop("REPRO_INTERP_TIER", None)
        results.append({
            "console_leak": result.console_leak,
            "file_leak": result.file_leak,
            "victim_alive": result.victim_alive,
            "exploit_ran": result.exploit_ran,
            "cycles": system.machine.clock.cycles,
            "counters": dict(system.machine.clock.counters),
            "status": status,
        })
    assert results[0] == results[1]
    assert not (results[0]["console_leak"] or results[0]["file_leak"])
