"""Instrumentation passes: sandboxing, CFI, mmap-mask, pipelines."""

import pytest

from repro.compiler.codegen import CodeGenerator
from repro.compiler.interp import Interpreter
from repro.compiler.parser import parse_module
from repro.compiler.passes.cfi import CFIPass
from repro.compiler.passes.mmap_mask import MmapMaskPass
from repro.compiler.passes.pipeline import (PassManager, vg_app_pipeline,
                                            vg_kernel_pipeline)
from repro.compiler.passes.sandbox import SandboxPass
from repro.compiler.verifier import verify_module
from repro.core.layout import (GHOST_START, KERNEL_CODE_START, SVA_START,
                               mask_address)
from repro.errors import CFIViolation
from repro.hardware.clock import CycleClock

from tests.compiler.test_interp import DictMemory

CODE_BASE = KERNEL_CODE_START + 0x400000
DATA_BASE = KERNEL_CODE_START + 0x500000
STACK_TOP = KERNEL_CODE_START + 0x600000

MEMORY_USER = """
module m
global @g 8
func @poke(%p) {
entry:
  %v = load8 %p
  store8 %v, @g
  memcpy @g, %p, 8
  ret %v
}
"""


def _compile(source, passes, externs=None):
    module = parse_module(source)
    verify_module(module)
    if passes:
        PassManager(passes).run(module)
    image = CodeGenerator(CODE_BASE, DATA_BASE).generate(module)
    memory = DictMemory()
    interp = Interpreter(image, memory, CycleClock(),
                         externs=externs or {}, stack_top=STACK_TOP)
    return module, image, interp, memory


# -- sandbox pass ----------------------------------------------------------------

def test_sandbox_inserts_vgmask_before_every_access():
    module, *_ = _compile(MEMORY_USER, [SandboxPass()])
    opcodes = [i.opcode for i in module.functions["poke"].instructions()]
    # load, store, and two memcpy pointers => 4 masks
    assert opcodes.count("vgmask") == 4
    # every memory op's pointer operand is now a fresh masked register
    for insn in module.functions["poke"].instructions():
        if insn.opcode == "load8":
            assert insn.operands[0].name.startswith("vg.mask")


def test_sandbox_stats():
    module = parse_module(MEMORY_USER)
    stats = SandboxPass().run(module)
    assert stats["masked_accesses"] == 4


def test_sandboxed_load_of_ghost_address_is_redirected():
    _, _, interp, memory = _compile(MEMORY_USER, [SandboxPass()])
    secret_addr = GHOST_START + 0x1000
    memory.store(secret_addr, 8, 0x5EC12E7)
    result = interp.run("poke", [secret_addr])
    assert result == 0            # read the (empty) dead zone instead
    assert memory.load(mask_address(secret_addr), 8) == 0


def test_unsandboxed_load_reads_ghost_directly():
    _, _, interp, memory = _compile(MEMORY_USER, [])
    secret_addr = GHOST_START + 0x1000
    memory.store(secret_addr, 8, 0x5EC12E7)
    assert interp.run("poke", [secret_addr]) == 0x5EC12E7


def test_sandboxed_store_to_ghost_vanishes():
    source = """
module m
func @smash(%p) {
entry:
  store8 666, %p
  ret 0
}
"""
    _, _, interp, memory = _compile(source, [SandboxPass()])
    target = GHOST_START + 0x2000
    memory.store(target, 8, 42)
    interp.run("smash", [target])
    assert memory.load(target, 8) == 42          # untouched


def test_sandboxed_sva_address_becomes_null():
    _, _, interp, memory = _compile(MEMORY_USER, [SandboxPass()])
    memory.store(SVA_START + 64, 8, 0xABCD)
    assert interp.run("poke", [SVA_START + 64]) == memory.load(0, 8)


def test_sandbox_leaves_kernel_addresses_alone():
    _, _, interp, memory = _compile(MEMORY_USER, [SandboxPass()])
    addr = KERNEL_CODE_START + 0x9000
    memory.store(addr, 8, 77)
    assert interp.run("poke", [addr]) == 77


def test_sandbox_charges_mask_cost():
    _, _, interp, memory = _compile(MEMORY_USER, [SandboxPass()])
    interp.run("poke", [KERNEL_CODE_START + 0x9000])
    assert interp.clock.counters.get("mask_check", 0) == 4


# -- CFI pass ----------------------------------------------------------------------

CALLS = """
module m
func @leaf(%x) {
entry:
  %r = add %x, 1
  ret %r
}
func @main(%x) {
entry:
  %a = call @leaf(%x)
  %fp = mov @leaf
  %b = callind %fp(%a)
  ret %b
}
"""


def test_cfi_labels_entries_and_return_sites():
    module, *_ = _compile(CALLS, [CFIPass()])
    main_ops = [i.opcode for i in module.functions["main"].instructions()]
    # entry label + one after call + one after icall
    assert main_ops.count("cfi_label") == 3
    assert main_ops[0] == "cfi_label"
    assert "cfi_icall" in main_ops and "callind" not in main_ops
    leaf_ops = [i.opcode for i in module.functions["leaf"].instructions()]
    assert "cfi_ret" in leaf_ops and "ret" not in leaf_ops


def test_cfi_instrumented_code_runs_correctly():
    _, _, interp, _ = _compile(CALLS, [CFIPass()])
    assert interp.run("main", [5]) == 7
    assert interp.clock.counters.get("cfi_check", 0) >= 3


def test_cfi_icall_to_unlabeled_entry_rejected():
    # compile leaf WITHOUT cfi, main WITH: icall target lacks a label
    source = """
module m
func @main(%target) {
entry:
  %b = callind %target(1)
  ret %b
}
"""
    module = parse_module(source)
    CFIPass().run(module)
    plain = parse_module(CALLS)         # uninstrumented functions
    image_plain = CodeGenerator(CODE_BASE + 0x10000,
                                DATA_BASE).generate(plain)
    image = CodeGenerator(CODE_BASE, DATA_BASE).generate(module)
    # merge: pretend the unlabeled leaf lives in the same image space
    image.functions["leaf"] = image_plain.functions["leaf"]
    image._addr_index[image_plain.functions["leaf"].base] = \
        image_plain.functions["leaf"]
    interp = Interpreter(image, DictMemory(), CycleClock(), externs={},
                         stack_top=STACK_TOP)
    with pytest.raises(CFIViolation, match="labeled"):
        interp.run("main", [image_plain.functions["leaf"].base])


def test_cfi_icall_outside_kernel_space_rejected():
    source = """
module m
func @main(%target) {
entry:
  %b = callind %target(1)
  ret %b
}
"""
    module = parse_module(source)
    CFIPass().run(module)
    image = CodeGenerator(CODE_BASE, DATA_BASE).generate(module)
    interp = Interpreter(image, DictMemory(), CycleClock(), externs={},
                         stack_top=STACK_TOP)
    with pytest.raises(CFIViolation, match="outside kernel"):
        interp.run("main", [0x40_0000])       # user-space address


def test_cfi_detects_smashed_return_address():
    """Overflow a stack buffer to overwrite the return slot: cfi_ret
    catches the redirected return; uninstrumented ret follows it."""
    source = """
module m
global @gadget_ran 8
func @gadget() {
entry:
  store8 1, @gadget_ran
  ret 0
}
func @vulnerable(%write_at, %value) {
entry:
  %buf = alloca 32
  %slot = add %buf, %write_at
  store8 %value, %slot
  ret 7
}
func @main(%off, %val) {
entry:
  %r = call @vulnerable(%off, %val)
  ret %r
}
"""
    # Instrumented: the smashed return is detected.
    module, image, interp, memory = _compile(source,
                                             [SandboxPass(), CFIPass()])
    gadget_addr = image.functions["gadget"].base
    # the return slot sits just above the alloca'd buffer: alloca rounds
    # to 16, so the slot is at buf+32 (ret_slot == frame sp before alloca)
    with pytest.raises(CFIViolation):
        interp.run("main", [32, gadget_addr + 1])   # mid-gadget: no label


def test_pipelines_compose():
    module = parse_module(MEMORY_USER)
    stats = vg_kernel_pipeline().run(module)
    assert stats["sandbox"]["masked_accesses"] == 4
    assert stats["cfi"]["checked_rets"] == 1
    opcodes = [i.opcode for i in module.functions["poke"].instructions()]
    assert "vgmask" in opcodes and "cfi_ret" in opcodes


# -- mmap-mask pass -------------------------------------------------------------------

def test_mmap_mask_rewrites_result_register():
    source = """
module app
extern @mmap/2
func @use() {
entry:
  %p = call @mmap(0, 4096)
  store8 1, %p
  ret %p
}
"""
    module = parse_module(source)
    stats = MmapMaskPass().run(module)
    assert stats["masked_returns"] == 1
    ops = [i.opcode for i in module.functions["use"].instructions()]
    call_idx = ops.index("call")
    assert ops[call_idx + 1] == "vgmask"


def test_mmap_mask_defeats_ghost_pointer():
    source = """
module app
extern @mmap/2
func @use() {
entry:
  %p = call @mmap(0, 4096)
  ret %p
}
"""
    module = parse_module(source)
    vg_app_pipeline().run(module)
    image = CodeGenerator(CODE_BASE, DATA_BASE).generate(module)
    evil = GHOST_START + 0x5000
    interp = Interpreter(image, DictMemory(), CycleClock(),
                         externs={"mmap": lambda args: evil},
                         stack_top=STACK_TOP)
    result = interp.run("use", [])
    assert result == mask_address(evil)
    assert result != evil


def test_mmap_mask_ignores_other_calls():
    source = """
module app
extern @read/3
func @use() {
entry:
  %r = call @read(0, 0, 0)
  ret %r
}
"""
    module = parse_module(source)
    stats = MmapMaskPass().run(module)
    assert stats["masked_returns"] == 0
