"""Interpreter semantics: arithmetic, control flow, memory, calls, fuel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.codegen import CodeGenerator
from repro.compiler.interp import ExecutionLimits, Interpreter
from repro.compiler.parser import parse_module
from repro.compiler.verifier import verify_module
from repro.core.layout import KERNEL_CODE_START
from repro.errors import InterpreterError
from repro.hardware.clock import CycleClock

CODE_BASE = KERNEL_CODE_START + 0x100000
DATA_BASE = KERNEL_CODE_START + 0x200000
STACK_TOP = KERNEL_CODE_START + 0x300000


class DictMemory:
    """Simple byte-addressable memory for interpreter tests."""

    def __init__(self):
        self.bytes: dict[int, int] = {}

    def load(self, addr, width):
        return int.from_bytes(
            bytes(self.bytes.get(addr + i, 0) for i in range(width)),
            "little")

    def store(self, addr, width, value):
        for i, b in enumerate((value & ((1 << (8 * width)) - 1))
                              .to_bytes(width, "little")):
            self.bytes[addr + i] = b

    def copy(self, dst, src, length):
        data = [self.bytes.get(src + i, 0) for i in range(length)]
        for i, b in enumerate(data):
            self.bytes[dst + i] = b

    def fill(self, dst, byte, length):
        for i in range(length):
            self.bytes[dst + i] = byte & 0xFF


def build(source, externs=None):
    module = parse_module(source)
    verify_module(module)
    image = CodeGenerator(CODE_BASE, DATA_BASE).generate(module)
    memory = DictMemory()
    interp = Interpreter(image, memory, CycleClock(),
                         externs=externs or {}, stack_top=STACK_TOP)
    return interp, memory, image


def run_expr(body, args=(), params=""):
    source = f"module t\nfunc @f({params}) {{\nentry:\n{body}\n}}\n"
    interp, _, _ = build(source)
    return interp.run("f", list(args))


# -- arithmetic -----------------------------------------------------------------

@pytest.mark.parametrize("body, expected", [
    ("  %x = add 3, 4\n  ret %x", 7),
    ("  %x = sub 3, 4\n  ret %x", (3 - 4) % 2 ** 64),
    ("  %x = mul 7, 6\n  ret %x", 42),
    ("  %x = udiv 42, 5\n  ret %x", 8),
    ("  %x = urem 42, 5\n  ret %x", 2),
    ("  %x = and 12, 10\n  ret %x", 8),
    ("  %x = or 12, 10\n  ret %x", 14),
    ("  %x = xor 12, 10\n  ret %x", 6),
    ("  %x = shl 1, 40\n  ret %x", 1 << 40),
    ("  %x = lshr 256, 4\n  ret %x", 16),
    ("  %x = mov 99\n  ret %x", 99),
    ("  %x = not 0\n  ret %x", 2 ** 64 - 1),
    ("  %x = select 1, 10, 20\n  ret %x", 10),
    ("  %x = select 0, 10, 20\n  ret %x", 20),
])
def test_arithmetic(body, expected):
    assert run_expr(body) == expected


def test_sdiv_signed_semantics():
    minus_seven = (2 ** 64 - 7)
    assert run_expr(f"  %x = sdiv {minus_seven}, 2\n  ret %x") \
        == (2 ** 64 - 3)


def test_ashr_sign_extends():
    minus_eight = 2 ** 64 - 8
    assert run_expr(f"  %x = ashr {minus_eight}, 1\n  ret %x") \
        == 2 ** 64 - 4


def test_division_by_zero_raises():
    with pytest.raises(InterpreterError, match="zero"):
        run_expr("  %x = udiv 1, 0\n  ret %x")


@pytest.mark.parametrize("pred, a, b, expected", [
    ("eq", 5, 5, 1), ("ne", 5, 5, 0),
    ("ult", 3, 5, 1), ("ugt", 3, 5, 0),
    ("ule", 5, 5, 1), ("uge", 4, 5, 0),
    ("slt", 2 ** 64 - 1, 0, 1),        # -1 < 0 signed
    ("sgt", 2 ** 64 - 1, 0, 0),
])
def test_icmp(pred, a, b, expected):
    assert run_expr(f"  %x = icmp {pred} {a}, {b}\n  ret %x") == expected


@given(st.integers(0, 2 ** 64 - 1), st.integers(0, 2 ** 64 - 1))
@settings(max_examples=40, deadline=None)
def test_add_matches_wraparound(a, b):
    assert run_expr(f"  %x = add {a}, {b}\n  ret %x") == (a + b) % 2 ** 64


# -- control flow -----------------------------------------------------------------

LOOP = """
module t
func @sum(%n) {
entry:
  %acc = mov 0
  %i = mov 1
  br head
head:
  %done = icmp ugt %i, %n
  condbr %done, out, body
body:
  %acc = add %acc, %i
  %i = add %i, 1
  br head
out:
  ret %acc
}
"""


def test_loop_sums():
    interp, _, _ = build(LOOP)
    assert interp.run("sum", [10]) == 55
    assert interp.run("sum", [0]) == 0


def test_recursion():
    source = """
module t
func @fact(%n) {
entry:
  %base = icmp ule %n, 1
  condbr %base, one, rec
one:
  ret 1
rec:
  %m = sub %n, 1
  %sub = call @fact(%m)
  %r = mul %n, %sub
  ret %r
}
"""
    interp, _, _ = build(source)
    assert interp.run("fact", [10]) == 3628800


def test_step_limit_stops_infinite_loop():
    source = """
module t
func @spin() {
entry:
  br entry
}
"""
    module = parse_module(source)
    image = CodeGenerator(CODE_BASE, DATA_BASE).generate(module)
    interp = Interpreter(image, DictMemory(), CycleClock(), externs={},
                         stack_top=STACK_TOP,
                         limits=ExecutionLimits(max_steps=1000))
    with pytest.raises(InterpreterError, match="step limit"):
        interp.run("spin", [])


def test_call_depth_limit():
    source = """
module t
func @down(%n) {
entry:
  %r = call @down(%n)
  ret %r
}
"""
    interp, _, _ = build(source)
    interp.limits = ExecutionLimits(max_call_depth=10)
    with pytest.raises(InterpreterError, match="depth"):
        interp.run("down", [1])


def test_unreachable_raises():
    with pytest.raises(InterpreterError, match="unreachable"):
        run_expr("  unreachable")


def test_wrong_arity_rejected():
    interp, _, _ = build(LOOP)
    with pytest.raises(InterpreterError, match="args"):
        interp.run("sum", [1, 2])


def test_unknown_function_rejected():
    interp, _, _ = build(LOOP)
    with pytest.raises(InterpreterError, match="no function"):
        interp.run("missing", [])


# -- memory & globals ----------------------------------------------------------------

def test_globals_initialized_via_image():
    source = """
module t
global @greeting 8 = "hi"
func @peek() {
entry:
  %v = load8 @greeting
  ret %v
}
"""
    interp, memory, image = build(source)
    addr = image.global_addrs["greeting"]
    memory.copy  # noqa: B018 -- memory starts empty; init is loader's job
    for i, b in enumerate(b"hi\x00\x00\x00\x00\x00\x00"):
        memory.bytes[addr + i] = b
    assert interp.run("peek", []) == int.from_bytes(
        b"hi\x00\x00\x00\x00\x00\x00"[:8], "little")


@pytest.mark.parametrize("width", [1, 2, 4, 8])
def test_load_store_widths(width):
    value = 0x1122334455667788
    masked = value & ((1 << (8 * width)) - 1)
    source = f"""
module t
global @slot 8
func @f() {{
entry:
  store{width} {value}, @slot
  %v = load{width} @slot
  ret %v
}}
"""
    interp, _, _ = build(source)
    assert interp.run("f", []) == masked


def test_alloca_gives_distinct_writable_slots():
    source = """
module t
func @f() {
entry:
  %p = alloca 16
  %q = alloca 16
  store8 111, %p
  store8 222, %q
  %a = load8 %p
  %b = load8 %q
  %s = add %a, %b
  ret %s
}
"""
    interp, _, _ = build(source)
    assert interp.run("f", []) == 333


def test_memcpy_memset():
    source = """
module t
global @src 16 = "abcdefgh"
global @dst 16
func @f() {
entry:
  memset @dst, 90, 16
  memcpy @dst, @src, 4
  %v = load8 @dst
  ret %v
}
"""
    interp, memory, image = build(source)
    src_addr = image.global_addrs["src"]
    for i, b in enumerate(b"abcdefgh"):
        memory.bytes[src_addr + i] = b
    result = interp.run("f", [])
    assert result.to_bytes(8, "little") == b"abcdZZZZ"


# -- externs -------------------------------------------------------------------------

def test_extern_call_receives_args_and_returns():
    calls = []

    def helper(args):
        calls.append(tuple(args))
        return sum(args)

    source = """
module t
extern @helper/3
func @f() {
entry:
  %r = call @helper(1, 2, 3)
  ret %r
}
"""
    interp, _, _ = build(source, externs={"helper": helper})
    assert interp.run("f", []) == 6
    assert calls == [(1, 2, 3)]


def test_indirect_call_through_function_pointer():
    source = """
module t
func @target(%x) {
entry:
  %r = add %x, 100
  ret %r
}
func @f() {
entry:
  %fp = mov @target
  %r = callind %fp(5)
  ret %r
}
"""
    interp, _, _ = build(source)
    assert interp.run("f", []) == 105


def test_indirect_call_to_non_entry_address_crashes():
    source = """
module t
func @target(%x) {
entry:
  %r = add %x, 1
  ret %r
}
func @f(%addr) {
entry:
  %r = callind %addr(5)
  ret %r
}
"""
    interp, _, image = build(source)
    bad = image.functions["target"].base + 1       # mid-function
    with pytest.raises(InterpreterError, match="non-entry|non-function"):
        interp.run("f", [bad])
