"""IR parser and verifier."""

import pytest

from repro.compiler.ir import (FuncRef, GlobalRef, Imm, Instruction, Module,
                               Reg)
from repro.compiler.parser import parse_module
from repro.compiler.verifier import verify_module
from repro.errors import CompilerError, IRParseError


GOOD = """
module demo

extern @helper/2
global @buf 32
global @msg 5 = "hello"
global @blob 4 = hex:deadbeef

func @add(%a, %b) {
entry:
  %s = add %a, %b
  ret %s
}

func @looper(%n) {
entry:
  %i = mov 0
  br head
head:
  %done = icmp uge %i, %n
  condbr %done, out, body
body:
  %i = add %i, 1
  br head
out:
  ret %i
}

func @calls(%x) {
entry:
  %r = call @add(%x, 5)
  %fp = mov @add
  %r2 = callind %fp(%r, 1)
  %h = call @helper(%r2, 0)
  ret %h
}

func @memops(%p) {
entry:
  %v = load8 %p
  store4 %v, @buf
  memcpy @buf, %p, 16
  memset @buf, 0, 8
  %q = alloca 64
  store8 %v, %q
  ret 0
}
"""


def test_parse_good_module():
    module = parse_module(GOOD)
    assert module.name == "demo"
    assert set(module.functions) == {"add", "looper", "calls", "memops"}
    assert module.externs["helper"].num_params == 2
    assert module.globals["buf"].size == 32
    assert module.globals["msg"].initial_bytes() == b"hello"
    assert module.globals["blob"].initial_bytes() == bytes.fromhex(
        "deadbeef")
    verify_module(module)


def test_parse_preserves_block_structure():
    module = parse_module(GOOD)
    looper = module.functions["looper"]
    assert [b.label for b in looper.blocks] == ["entry", "head", "body",
                                                "out"]
    assert looper.entry.terminator.opcode == "br"


def test_roundtrip_through_str():
    module = parse_module(GOOD)
    # the module prints in a loosely-parsable form; sanity-check content
    text = str(module)
    assert "func @add" in text and "module demo" in text


def test_comments_and_blank_lines_ignored():
    module = parse_module("""
module m
# a comment
func @f() {     # trailing comment is not allowed on func... on its own
entry:
  # comment inside
  ret 0
}
""".replace("{     # trailing comment is not allowed on func... on its own",
            "{"))
    assert "f" in module.functions


@pytest.mark.parametrize("source, fragment", [
    ("func @f() {\nentry:\n ret 0\n}", "module"),
    ("module m\nfunc @f() {\nentry:\n  %x = frobnicate 1\n}", "opcode"),
    ("module m\nfunc @f() {\n  ret 0\n}", "before any label"),
    ("module m\nfunc @f() {\nentry:\n  ret 0", "unterminated"),
    ("module m\nfunc @f(a) {\nentry:\n  ret 0\n}", "%"),
    ("module m\nglobal @g 4 = \"toolong\"\n", "longer"),
    ("module m\nfunc @f() {\nentry:\n  %x = add %a\n}", "operand"),
    ("module m\nfunc @f() {\nentry:\nentry:\n  ret 0\n}", "duplicate"),
    ("module m\nfunc @f() {\nentry:\n  condbr %c, only_one\n}", "condbr"),
])
def test_parse_errors(source, fragment):
    with pytest.raises(IRParseError) as exc:
        parse_module(source)
    assert fragment.lower() in str(exc.value).lower()


def test_duplicate_function_rejected():
    with pytest.raises(CompilerError):
        parse_module("module m\n"
                     "func @f() {\nentry:\n  ret 0\n}\n"
                     "func @f() {\nentry:\n  ret 0\n}\n")


# -- verifier -------------------------------------------------------------------

def _module_with(insns, params=("a",)):
    from repro.compiler.ir import BasicBlock, Function
    module = Module(name="t")
    function = Function(name="f", params=list(params))
    function.blocks.append(BasicBlock(label="entry", instructions=insns))
    module.functions["f"] = function
    return module


def test_verifier_accepts_valid():
    verify_module(_module_with([
        Instruction(opcode="add", result="x", operands=[Reg("a"), Imm(1)]),
        Instruction(opcode="ret", operands=[Reg("x")]),
    ]))


def test_verifier_rejects_missing_terminator():
    with pytest.raises(CompilerError, match="terminator"):
        verify_module(_module_with([
            Instruction(opcode="add", result="x",
                        operands=[Reg("a"), Imm(1)]),
        ]))


def test_verifier_rejects_terminator_mid_block():
    with pytest.raises(CompilerError, match="not at block end"):
        verify_module(_module_with([
            Instruction(opcode="ret", operands=[]),
            Instruction(opcode="ret", operands=[]),
        ]))


def test_verifier_rejects_undefined_register():
    with pytest.raises(CompilerError, match="undefined register"):
        verify_module(_module_with([
            Instruction(opcode="ret", operands=[Reg("ghost")]),
        ]))


def test_verifier_rejects_unknown_branch_target():
    with pytest.raises(CompilerError, match="unknown label"):
        verify_module(_module_with([
            Instruction(opcode="br", targets=["nowhere"]),
        ]))


def test_verifier_rejects_unknown_symbol():
    with pytest.raises(CompilerError, match="unknown symbol"):
        verify_module(_module_with([
            Instruction(opcode="load8", result="v",
                        operands=[GlobalRef("nope")]),
            Instruction(opcode="ret", operands=[]),
        ]))


def test_verifier_rejects_call_arity_mismatch():
    module = parse_module("""
module m
func @callee(%a, %b) {
entry:
  ret 0
}
func @caller() {
entry:
  %r = call @callee(1)
  ret %r
}
""")
    with pytest.raises(CompilerError, match="expects 2"):
        verify_module(module)


def test_verifier_rejects_unknown_callee():
    with pytest.raises(CompilerError, match="unknown function"):
        verify_module(_module_with([
            Instruction(opcode="call", result="r",
                        operands=[FuncRef("missing")]),
            Instruction(opcode="ret", operands=[]),
        ]))


def test_verifier_rejects_result_on_store():
    with pytest.raises(CompilerError):
        verify_module(_module_with([
            Instruction(opcode="store8", result="bad",
                        operands=[Reg("a"), Reg("a")]),
            Instruction(opcode="ret", operands=[]),
        ]))


def test_verifier_rejects_valueless_add():
    with pytest.raises(CompilerError, match="must have a result"):
        verify_module(_module_with([
            Instruction(opcode="add", operands=[Reg("a"), Imm(1)]),
            Instruction(opcode="ret", operands=[]),
        ]))


def test_verifier_rejects_zero_alloca():
    with pytest.raises(CompilerError, match="alloca"):
        verify_module(_module_with([
            Instruction(opcode="alloca", result="p", operands=[Imm(0)]),
            Instruction(opcode="ret", operands=[]),
        ]))
