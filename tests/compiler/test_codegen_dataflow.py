"""Code generation, translation signing, and dataflow utilities."""

import pytest

from repro.compiler.codegen import CodeGenerator
from repro.compiler.dataflow import (call_graph, direct_callees,
                                     has_indirect_transfers,
                                     reverse_postorder, successors,
                                     unreachable_blocks)
from repro.compiler.ir import Imm
from repro.compiler.parser import parse_module
from repro.core.layout import KERNEL_CODE_START
from repro.errors import CompilerError, SignatureError

CODE_BASE = KERNEL_CODE_START + 0x700000
DATA_BASE = KERNEL_CODE_START + 0x800000

SOURCE = """
module demo
global @data 24 = "xyz"
func @a() {
entry:
  %r = call @b()
  ret %r
}
func @b() {
entry:
  %c = icmp eq 1, 1
  condbr %c, yes, no
yes:
  ret 1
no:
  br dead_end
dead_end:
  ret 2
}
func @indirecty(%fp) {
entry:
  %r = callind %fp()
  ret %r
}
"""


def _image():
    return CodeGenerator(CODE_BASE, DATA_BASE).generate(
        parse_module(SOURCE))


def test_functions_get_disjoint_address_ranges():
    image = _image()
    ranges = sorted((f.base, f.end) for f in image.functions.values())
    for (_, end_a), (start_b, _) in zip(ranges, ranges[1:]):
        assert end_a <= start_b


def test_function_at_resolves_entries_only():
    image = _image()
    fa = image.functions["a"]
    assert image.function_at(fa.base) is fa
    assert image.function_at(fa.base + 1) is None


def test_locate_resolves_interior_addresses():
    image = _image()
    fb = image.functions["b"]
    function, index = image.locate(fb.base + 2)
    assert function is fb and index == 2
    assert image.locate(0xDEAD) is None


def test_globals_assigned_addresses_and_inits():
    image = _image()
    assert image.global_addrs["data"] >= DATA_BASE
    assert image.global_inits["data"].startswith(b"xyz")
    assert image.data_size >= 24


def test_branch_targets_become_indices():
    image = _image()
    fb = image.functions["b"]
    condbr = next(i for i in fb.insns if i.opcode == "condbr")
    assert all(isinstance(t, int) and 0 <= t < len(fb.insns)
               for t in condbr.targets)


def test_function_refs_lower_to_addresses():
    source = """
module m
func @t() {
entry:
  ret 0
}
func @f() {
entry:
  %fp = mov @t
  ret %fp
}
"""
    image = CodeGenerator(CODE_BASE, DATA_BASE).generate(
        parse_module(source))
    mov = image.functions["f"].insns[0]
    assert isinstance(mov.operands[0], Imm)
    assert mov.operands[0].value == image.functions["t"].base


def test_address_of_extern_rejected():
    source = """
module m
extern @e/0
func @f() {
entry:
  %fp = mov @e
  ret %fp
}
"""
    with pytest.raises(CompilerError, match="extern"):
        CodeGenerator(CODE_BASE, DATA_BASE).generate(parse_module(source))


# -- signing --------------------------------------------------------------------

def test_sign_verify_roundtrip():
    image = _image()
    image.sign(b"translation-key")
    image.verify(b"translation-key")


def test_unsigned_image_fails_verification():
    image = _image()
    with pytest.raises(SignatureError, match="unsigned"):
        image.verify(b"key")


def test_tampered_instruction_fails_verification():
    image = _image()
    image.sign(b"key")
    image.functions["b"].insns[-1].operands[:] = [Imm(99)]
    with pytest.raises(SignatureError, match="tampered"):
        image.verify(b"key")


def test_wrong_key_fails_verification():
    image = _image()
    image.sign(b"key-a")
    with pytest.raises(SignatureError):
        image.verify(b"key-b")


# -- dataflow --------------------------------------------------------------------

def test_successors():
    module = parse_module(SOURCE)
    fb = module.functions["b"]
    assert successors(fb, "entry") == ["yes", "no"]
    assert successors(fb, "yes") == []


def test_reverse_postorder_starts_at_entry():
    module = parse_module(SOURCE)
    order = reverse_postorder(module.functions["b"])
    assert order[0] == "entry"
    assert set(order) == {"entry", "yes", "no", "dead_end"}


def test_unreachable_blocks_detected():
    source = """
module m
func @f() {
entry:
  ret 0
island:
  ret 1
}
"""
    module = parse_module(source)
    assert unreachable_blocks(module.functions["f"]) == {"island"}


def test_call_graph_and_callees():
    module = parse_module(SOURCE)
    assert direct_callees(module.functions["a"]) == {"b"}
    graph = call_graph(module)
    assert graph["a"] == {"b"}
    assert graph["b"] == set()


def test_has_indirect_transfers():
    module = parse_module(SOURCE)
    assert has_indirect_transfers(module.functions["indirecty"])
    assert not has_indirect_transfers(module.functions["a"])
